#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace pllbist::testing {

// Shared tolerance constants for BIST-vs-theory comparisons, mirroring the
// DESIGN.md section 9 band contract. Tests that gate a whole sweep should
// prefer golden::ToleranceBands; these are for single-point spot checks.
inline constexpr double kInBandMagnitudeTolDb = 1.0;
inline constexpr double kInBandPhaseTolDeg = 5.0;
inline constexpr double kPeakMagnitudeTolDb = 2.5;
inline constexpr double kPeakPhaseTolDeg = 25.0;

/// Wrap a degree difference into (-180, 180] so comparisons near the branch
/// cut (+180 vs -180) measure the short way around the circle.
inline double wrapDegrees(double deg) {
  while (deg <= -180.0) deg += 360.0;
  while (deg > 180.0) deg -= 360.0;
  return deg;
}

/// dB-domain comparator. Unlike EXPECT_NEAR, a NaN or infinity on either
/// side fails with a message naming the non-finite operand instead of
/// silently failing the < comparison.
inline ::testing::AssertionResult dbNear(const char* actual_expr, const char* expected_expr,
                                         const char* tol_expr, double actual, double expected,
                                         double tol_db) {
  if (!std::isfinite(actual))
    return ::testing::AssertionFailure()
           << actual_expr << " is not finite (" << actual << ") while comparing against "
           << expected_expr << " = " << expected << " dB";
  if (!std::isfinite(expected))
    return ::testing::AssertionFailure()
           << expected_expr << " is not finite (" << expected << ") while comparing against "
           << actual_expr << " = " << actual << " dB";
  const double delta = actual - expected;
  if (std::abs(delta) <= tol_db) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << actual_expr << " = " << actual << " dB differs from " << expected_expr << " = "
         << expected << " dB by " << delta << " dB (tolerance " << tol_expr << " = " << tol_db
         << " dB)";
}

/// Degree-domain comparator: wraps the difference into (-180, 180] before
/// applying the tolerance, and rejects non-finite operands like dbNear.
inline ::testing::AssertionResult phaseNearDeg(const char* actual_expr, const char* expected_expr,
                                               const char* tol_expr, double actual, double expected,
                                               double tol_deg) {
  if (!std::isfinite(actual))
    return ::testing::AssertionFailure()
           << actual_expr << " is not finite (" << actual << ") while comparing against "
           << expected_expr << " = " << expected << " deg";
  if (!std::isfinite(expected))
    return ::testing::AssertionFailure()
           << expected_expr << " is not finite (" << expected << ") while comparing against "
           << actual_expr << " = " << actual << " deg";
  const double delta = wrapDegrees(actual - expected);
  if (std::abs(delta) <= tol_deg) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << actual_expr << " = " << actual << " deg differs from " << expected_expr << " = "
         << expected << " deg by " << delta << " deg wrapped (tolerance " << tol_expr << " = "
         << tol_deg << " deg)";
}

/// ULP-distance equality for doubles: true when a and b are within
/// `max_ulps` representable values of each other. NaN never matches; +0.0
/// and -0.0 match. Use where a relative epsilon is too blunt (e.g. checking
/// bit-level determinism allowances).
inline bool ulpsEqual(double a, double b, int max_ulps = 4) {
  if (std::isnan(a) || std::isnan(b)) return false;
  if (a == b) return true;  // covers +-0.0 and exact equality
  if (std::isinf(a) || std::isinf(b)) return false;
  if ((a < 0.0) != (b < 0.0)) return false;
  // With matching signs, the IEEE-754 bit patterns are monotone in value,
  // so the ULP distance is the difference of the (payload) bit patterns.
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  const std::uint64_t dist = ua > ub ? ua - ub : ub - ua;
  return dist <= static_cast<std::uint64_t>(max_ulps);
}

}  // namespace pllbist::testing

/// EXPECT-style wrappers so failures print the offending expressions.
#define EXPECT_DB_NEAR(actual, expected, tol_db) \
  EXPECT_PRED_FORMAT3(::pllbist::testing::dbNear, actual, expected, tol_db)
#define ASSERT_DB_NEAR(actual, expected, tol_db) \
  ASSERT_PRED_FORMAT3(::pllbist::testing::dbNear, actual, expected, tol_db)
#define EXPECT_PHASE_NEAR_DEG(actual, expected, tol_deg) \
  EXPECT_PRED_FORMAT3(::pllbist::testing::phaseNearDeg, actual, expected, tol_deg)
#define ASSERT_PHASE_NEAR_DEG(actual, expected, tol_deg) \
  ASSERT_PRED_FORMAT3(::pllbist::testing::phaseNearDeg, actual, expected, tol_deg)
