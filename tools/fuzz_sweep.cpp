// Seeded fuzz driver for the sweep stack: mutate device + sweep options
// around the seeded-config family, optionally choreograph sim-level faults
// through the PR-1 injector, run a short resilient sweep and hold the
// result to the library's structural invariants:
//
//   1. no NaN/Inf escapes a MeasuredPoint or the quality roll-up;
//   2. every Status carries a kind inside the taxonomy (kindName never
//      falls through to "unknown"), and invalid options are rejected as
//      InvalidArgument instead of crashing;
//   3. the SweepQualityReport counters are internally consistent;
//   4. the consolidated RunReport round-trips through the obs JSON parser
//      (toJson -> parse -> validate -> dump -> reparse -> dump fixpoint);
//   5. the checkpoint-journal loader is crash-proof under mutation: a
//      synthesized journal is torn, duplicated, reordered, bit-flipped,
//      beheaded or digest-corrupted, and the loader must either accept it
//      with unique in-range indices (exactly-once resume) or fail closed
//      as InvalidArgument — never crash, never accept garbage.
//
// Built two ways:
//   - standalone driver (always): fuzz_sweep --seed N --runs N
//     [--max-seconds S] [--verbose] — deterministic, used by the
//     `fuzz_smoke` ctest entry;
//   - libFuzzer target (clang + -DPLLBIST_FUZZ=ON): the same fuzzOne()
//     behind LLVMFuzzerTestOneInput.
//
// Any invariant violation prints the offending seed and aborts, so both
// the smoke test and the libFuzzer loop detect it.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "bist/controller.hpp"
#include "bist/resilient_sweep.hpp"
#include "bist/testbench.hpp"
#include "core/journal.hpp"
#include "core/report_builder.hpp"
#include "golden/differential.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "sim/fault_injector.hpp"

namespace {

using pllbist::Status;

uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double unitInterval(uint64_t bits) { return static_cast<double>(bits >> 11) * 0x1.0p-53; }

struct FuzzStats {
  uint64_t runs = 0;
  uint64_t swept = 0;     ///< sweeps that actually ran
  uint64_t rejected = 0;  ///< option mutations refused as InvalidArgument
  uint64_t faulted = 0;   ///< runs with the injector attached
  uint64_t journals = 0;  ///< journal-mutation iterations
};

[[noreturn]] void fail(uint64_t seed, const char* invariant, const std::string& detail) {
  std::fprintf(stderr, "fuzz_sweep: INVARIANT VIOLATION [seed 0x%016llx] %s: %s\n",
               static_cast<unsigned long long>(seed), invariant, detail.c_str());
  std::abort();
}

void requireFinite(uint64_t seed, const char* what, double v) {
  if (!std::isfinite(v)) fail(seed, "finite", std::string(what) + " is not finite");
}

// The Status taxonomy is total: every kind the library can produce has a
// name, and kindName never falls through to a placeholder.
void requireTaxonomy(uint64_t seed, const Status& s, const char* where) {
  const char* name = Status::kindName(s.kind());
  if (name == nullptr || *name == '\0' || std::strcmp(name, "unknown") == 0)
    fail(seed, "status-taxonomy", std::string(where) + ": unnamed status kind");
}

// Invariant 5: journal-mutation fuzz. Synthesize a valid checkpoint
// journal from the seed stream, apply one structured mutation, and hold
// the loader to its fail-closed contract: parse succeeds with unique
// in-range indices, or fails as InvalidArgument — and parsing is a pure
// function (same text twice -> same outcome).
void fuzzJournal(uint64_t seed, uint64_t& state, FuzzStats& st) {
  namespace core = pllbist::core;
  ++st.journals;

  core::CheckpointHeader hdr;
  hdr.tool = "fuzz_sweep";
  hdr.device = "fuzz";
  hdr.stimulus = "multi-tone-fsk";
  hdr.config_digest = splitmix64(state) | 1;
  const std::size_t n = 2 + splitmix64(state) % 6;  // 2..7 records
  hdr.points_total = n;

  std::vector<std::string> lines;
  for (std::size_t i = 0; i < n; ++i) {
    core::CheckpointRecord rec;
    rec.index = i;
    rec.point.modulation_hz = 10.0 + 5.0 * static_cast<double>(i);
    rec.point.deviation_hz = 100.0 + 400.0 * unitInterval(splitmix64(state));
    rec.point.phase_deg = -180.0 * unitInterval(splitmix64(state));
    rec.point.attempts = 1 + static_cast<int>(splitmix64(state) % 3);
    rec.nominal_vco_hz = 1e5;
    rec.static_reference_deviation_hz = 1000.0;
    rec.sim_time_s = 0.25 * unitInterval(splitmix64(state));
    rec.bench.events_processed = static_cast<long long>(splitmix64(state) % 100000);
    rec.bench.events_delivered = rec.bench.events_processed;
    lines.push_back(core::JournalWriter::recordLine(rec));
  }
  std::string text = core::JournalWriter::headerLine(hdr) + "\n";
  for (const std::string& l : lines) text += l + "\n";

  const unsigned mutation = static_cast<unsigned>(splitmix64(state) % 8);
  bool expect_ok = false, expect_torn = false, expect_fail = false;
  std::size_t expect_records = 0;
  switch (mutation) {
    case 0:  // untouched: must load completely
      expect_ok = true;
      expect_records = n;
      break;
    case 1: {  // torn tail: chop 1..len bytes off the final line
      const std::size_t chop = 1 + splitmix64(state) % lines.back().size();
      text.resize(text.size() - chop);
      expect_ok = expect_torn = true;
      expect_records = n - 1;
      break;
    }
    case 2:  // duplicated record: keep-first, still n unique
      text += lines[splitmix64(state) % n] + "\n";
      expect_ok = true;
      expect_records = n;
      break;
    case 3: {  // reordered records: indices are explicit, order is free
      const std::size_t a = splitmix64(state) % n, b = splitmix64(state) % n;
      std::string reordered = core::JournalWriter::headerLine(hdr) + "\n";
      std::vector<std::string> shuffled = lines;
      std::swap(shuffled[a], shuffled[b]);
      for (const std::string& l : shuffled) reordered += l + "\n";
      text = reordered;
      expect_ok = true;
      expect_records = n;
      break;
    }
    case 4: {  // bit flip anywhere: any classification but never a crash
      const std::size_t pos = splitmix64(state) % text.size();
      text[pos] = static_cast<char>(text[pos] ^ static_cast<char>(1u << (splitmix64(state) % 8)));
      break;
    }
    case 5:  // beheaded: first line is a record, not a header
      text = text.substr(text.find('\n') + 1);
      expect_fail = true;
      break;
    case 6: {  // digest corrupt: parses, but the header check must refuse
      core::CheckpointHeader wrong = hdr;
      wrong.config_digest ^= 0x10;
      text = core::JournalWriter::headerLine(wrong) + "\n";
      for (const std::string& l : lines) text += l + "\n";
      expect_ok = true;
      expect_records = n;
      break;
    }
    case 7:  // arbitrary prefix: clean cut, torn cut, or a dead header
      text.resize(splitmix64(state) % (text.size() + 1));
      break;
  }

  core::JournalLoadResult loaded;
  const Status parsed = core::parseJournal(text, loaded);
  requireTaxonomy(seed, parsed, "parseJournal");
  if (!parsed.ok() && parsed.kind() != Status::Kind::InvalidArgument)
    fail(seed, "journal-failclosed", "loader rejection is not InvalidArgument: " +
                                         parsed.toString());
  if (expect_fail && parsed.ok())
    fail(seed, "journal-failclosed", "beheaded journal was accepted");
  if (expect_ok) {
    if (!parsed.ok())
      fail(seed, "journal-failclosed",
           "mutation " + std::to_string(mutation) + " should load: " + parsed.toString());
    if (loaded.records.size() != expect_records)
      fail(seed, "journal-exactly-once",
           "mutation " + std::to_string(mutation) + ": expected " +
               std::to_string(expect_records) + " records, got " +
               std::to_string(loaded.records.size()));
    if (expect_torn != loaded.torn_tail)
      fail(seed, "journal-exactly-once", "torn-tail flag wrong for mutation " +
                                             std::to_string(mutation));
  }
  if (parsed.ok()) {
    // Exactly-once: indices unique and inside the campaign.
    std::vector<bool> seen(loaded.header.points_total, false);
    for (const core::CheckpointRecord& r : loaded.records) {
      if (r.index >= loaded.header.points_total)
        fail(seed, "journal-exactly-once", "record index out of range");
      if (seen[r.index]) fail(seed, "journal-exactly-once", "duplicate index survived loading");
      seen[r.index] = true;
    }
    if (loaded.clean_bytes > text.size())
      fail(seed, "journal-exactly-once", "clean_bytes beyond the file");
    // The campaign identity check is itself total: ok or InvalidArgument.
    const Status ident =
        core::checkJournalHeader(loaded.header, hdr.config_digest, hdr.points_total);
    requireTaxonomy(seed, ident, "checkJournalHeader");
    if (!ident.ok() && ident.kind() != Status::Kind::InvalidArgument)
      fail(seed, "journal-failclosed", "identity rejection is not InvalidArgument");
    if (mutation == 6 && ident.ok())
      fail(seed, "journal-failclosed", "corrupt config digest was accepted");
  }
  // Purity: loading the same bytes again classifies identically.
  core::JournalLoadResult again;
  const Status reparsed = core::parseJournal(text, again);
  if (reparsed.kind() != parsed.kind() || again.records.size() != loaded.records.size() ||
      again.torn_tail != loaded.torn_tail)
    fail(seed, "journal-failclosed", "parseJournal is not deterministic");
}

// One fuzz iteration. `data` seeds a splitmix64 stream; the stream picks
// the device, mutates the sweep options (sometimes into invalid shapes on
// purpose) and decides the fault choreography. Returns stats deltas via
// `st`.
void fuzzOne(const uint8_t* data, size_t size, FuzzStats& st) {
  ++st.runs;
  uint64_t seed = pllbist::obs::fnv1a64(
      std::string_view(reinterpret_cast<const char*>(data), size));
  if (seed == 0) seed = 1;
  uint64_t state = seed;

  // Journal mutations are pure CPU (no simulation), so every iteration
  // fuzzes the loader alongside the sweep stack.
  fuzzJournal(seed, state, st);

  // Device from the same seeded family as the golden differential suite:
  // fn in [120, 420] Hz, zeta in [0.3, 1.5], both pump kinds.
  const pllbist::golden::SeededConfig device = pllbist::golden::seededRandomConfig(seed);
  const pllbist::pll::PllConfig& config = device.config;

  pllbist::bist::SweepOptions sweep = pllbist::bist::quickSweepOptions(
      config, pllbist::bist::StimulusKind::MultiToneFsk, 3);
  sweep.modulation_frequencies_hz = {0.3 * device.fn_hz, 1.0 * device.fn_hz,
                                     2.0 * device.fn_hz};
  sweep.jitter_seed = static_cast<unsigned>(seed);

  // Structured mutations. Each draw perturbs one knob; a slice of the
  // space is deliberately invalid to exercise the rejection path.
  const uint64_t knobs = splitmix64(state);
  sweep.fm_steps = 4 + static_cast<int>(splitmix64(state) % 37);  // 4..40
  sweep.deviation_hz *= 0.25 + 3.75 * unitInterval(splitmix64(state));
  if ((knobs & 0x01) != 0) sweep.master_clock_hz *= ((knobs & 0x02) != 0) ? 2.0 : 0.5;
  if ((knobs & 0x04) != 0)
    sweep.sequencer.settle_periods = 1 + static_cast<int>(splitmix64(state) % 6);
  if ((knobs & 0x08) != 0)
    sweep.sequencer.average_periods = 1 + static_cast<int>(splitmix64(state) % 8);

  const unsigned poison = static_cast<unsigned>(splitmix64(state) % 16);
  switch (poison) {
    case 0: sweep.deviation_hz = -sweep.deviation_hz; break;          // negative depth
    case 1: sweep.modulation_frequencies_hz.clear(); break;           // empty plan
    case 2:                                                           // descending plan
      std::swap(sweep.modulation_frequencies_hz.front(), sweep.modulation_frequencies_hz.back());
      break;
    case 3: sweep.fm_steps = 0; break;                                // no FSK slots
    case 4: sweep.deviation_hz = 2.0 * config.ref_frequency_hz; break;  // DCO wraps 0 Hz
    default: break;  // leave valid
  }

  // Invariant 2 (rejection path): a bad plan must come back as a named
  // InvalidArgument, never crash and never pass.
  const Status precheck = sweep.check(config);
  requireTaxonomy(seed, precheck, "SweepOptions::check");
  if (!precheck.ok()) {
    if (precheck.kind() != Status::Kind::InvalidArgument)
      fail(seed, "status-taxonomy",
           "option rejection is not InvalidArgument: " + precheck.toString());
    ++st.rejected;
    return;
  }
  if (poison <= 4)
    fail(seed, "status-taxonomy", "poisoned options passed SweepOptions::check");

  pllbist::bist::ResilientSweepOptions resilience;
  resilience.max_attempts = 2;
  pllbist::bist::ResilientSweep engine(config, sweep, resilience);

  // Fault choreography on a slice of the runs: drop or stick the divided
  // output under the sweep and require the taxonomy to absorb it.
  const uint64_t fault_draw = splitmix64(state);
  const bool inject = (fault_draw & 0x03) == 0;  // ~25% of valid runs
  if (inject) {
    ++st.faulted;
    const double drop_p = 0.05 + 0.30 * unitInterval(splitmix64(state));
    const uint64_t inj_seed = splitmix64(state) | 1;
    engine.onTestbench([drop_p, inj_seed, fault_draw](pllbist::bist::SweepTestbench& tb) {
      pllbist::sim::FaultInjector& inj = tb.faultInjector(inj_seed);
      if ((fault_draw & 0x04) != 0)
        inj.dropEdges(tb.mfreq(), drop_p);
      else
        inj.delayEdges(tb.mfreq(), drop_p, 1e-7, 1e-5);
    });
  }

  const pllbist::bist::ResilientResponse result = engine.run();
  ++st.swept;

  // Invariant 2 (result path): every status the stack produced is named.
  requireTaxonomy(seed, result.status, "sweep status");
  for (const pllbist::bist::MeasuredPoint& p : result.response.points) {
    requireTaxonomy(seed, p.status, "point status");
    const char* q = to_string(p.quality);
    if (q == nullptr || *q == '\0')
      fail(seed, "status-taxonomy", "unnamed point quality");
    // Invariant 1: no NaN/Inf escapes a measurement, timed out or not.
    requireFinite(seed, "modulation_hz", p.modulation_hz);
    requireFinite(seed, "deviation_hz", p.deviation_hz);
    requireFinite(seed, "phase_deg", p.phase_deg);
    requireFinite(seed, "unity_gain_deviation_hz", p.unity_gain_deviation_hz);
    requireFinite(seed, "wall_time_s", p.wall_time_s);
    if (p.attempts < 1) fail(seed, "quality-rollup", "point consumed < 1 attempt");
  }
  requireFinite(seed, "nominal_vco_hz", result.response.nominal_vco_hz);
  requireFinite(seed, "static_reference_deviation_hz",
                result.response.static_reference_deviation_hz);

  // Invariant 3: the quality roll-up counters agree with themselves and
  // with the measured points.
  const pllbist::bist::SweepQualityReport& rep = result.report;
  const int classified = rep.ok + rep.retried + rep.degraded + rep.dropped;
  if (classified != rep.points_total)
    fail(seed, "quality-rollup",
         "ok+retried+degraded+dropped = " + std::to_string(classified) + " != points_total = " +
             std::to_string(rep.points_total));
  if (rep.points_total != static_cast<int>(result.response.points.size()))
    fail(seed, "quality-rollup", "points_total disagrees with response.points.size()");
  if (rep.attempts_total < rep.points_total)
    fail(seed, "quality-rollup", "attempts_total < points_total");
  if (rep.usable() != rep.points_total - rep.dropped)
    fail(seed, "quality-rollup", "usable() != points_total - dropped");
  requireFinite(seed, "sim_time_s", rep.sim_time_s);
  requireFinite(seed, "wall_time_s", rep.wall_time_s);

  // Invariant 4: the consolidated report round-trips through the PR-3
  // parser and re-serialises to a fixpoint.
  const pllbist::obs::RunReport run =
      pllbist::core::buildRunReport("fuzz_sweep", "fuzz", config, sweep, -1, result);
  const std::string text = run.toJson();
  pllbist::obs::JsonValue root;
  const Status parsed = pllbist::obs::parseJson(text, root);
  if (!parsed.ok()) fail(seed, "report-roundtrip", "toJson unparseable: " + parsed.toString());
  const Status valid = pllbist::obs::validateRunReportJson(root);
  if (!valid.ok()) fail(seed, "report-roundtrip", "schema violation: " + valid.toString());
  const std::string dumped = root.dump();
  pllbist::obs::JsonValue again;
  if (!pllbist::obs::parseJson(dumped, again).ok())
    fail(seed, "report-roundtrip", "canonical dump unparseable");
  if (again.dump() != dumped) fail(seed, "report-roundtrip", "dump -> parse -> dump not a fixpoint");
  pllbist::obs::stripTimingFields(again);
  if (!pllbist::obs::validateRunReportJson(again).ok())
    fail(seed, "report-roundtrip", "stripped report no longer validates");
}

}  // namespace

#if defined(PLLBIST_FUZZ_LIBFUZZER)

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static FuzzStats st;
  fuzzOne(data, size, st);
  return 0;
}

#else  // standalone seeded driver

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--runs N] [--max-seconds S] [--verbose]\n"
               "Deterministic seeded fuzz of the sweep stack; aborts on the first\n"
               "invariant violation. Stops at --runs iterations or the --max-seconds\n"
               "budget, whichever comes first.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  uint64_t runs = 50;
  double max_seconds = 60.0;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_sweep: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") seed = std::strtoull(next("--seed"), nullptr, 0);
    else if (arg == "--runs") runs = std::strtoull(next("--runs"), nullptr, 0);
    else if (arg == "--max-seconds") max_seconds = std::strtod(next("--max-seconds"), nullptr);
    else if (arg == "--verbose") verbose = true;
    else return usage(argv[0]);
  }

  const auto t0 = std::chrono::steady_clock::now();
  FuzzStats st;
  for (uint64_t i = 0; i < runs; ++i) {
    uint8_t buf[16];
    const uint64_t a = seed, b = i;
    std::memcpy(buf, &a, 8);
    std::memcpy(buf + 8, &b, 8);
    fuzzOne(buf, sizeof buf, st);
    const double elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    if (verbose)
      std::printf("run %llu/%llu  swept=%llu rejected=%llu faulted=%llu  %.1fs\n",
                  static_cast<unsigned long long>(i + 1), static_cast<unsigned long long>(runs),
                  static_cast<unsigned long long>(st.swept),
                  static_cast<unsigned long long>(st.rejected),
                  static_cast<unsigned long long>(st.faulted), elapsed);
    if (elapsed > max_seconds) break;
  }
  std::printf(
      "fuzz_sweep: %llu runs (%llu swept, %llu rejected, %llu faulted, %llu journals), "
      "0 violations\n",
      static_cast<unsigned long long>(st.runs), static_cast<unsigned long long>(st.swept),
      static_cast<unsigned long long>(st.rejected), static_cast<unsigned long long>(st.faulted),
      static_cast<unsigned long long>(st.journals));
  if (st.swept == 0) {
    std::fprintf(stderr, "fuzz_sweep: no iteration exercised a sweep — widen the budget\n");
    return 1;
  }
  return 0;
}

#endif  // PLLBIST_FUZZ_LIBFUZZER
