// Seeded fuzz driver for the sweep stack: mutate device + sweep options
// around the seeded-config family, optionally choreograph sim-level faults
// through the PR-1 injector, run a short resilient sweep and hold the
// result to the library's structural invariants:
//
//   1. no NaN/Inf escapes a MeasuredPoint or the quality roll-up;
//   2. every Status carries a kind inside the taxonomy (kindName never
//      falls through to "unknown"), and invalid options are rejected as
//      InvalidArgument instead of crashing;
//   3. the SweepQualityReport counters are internally consistent;
//   4. the consolidated RunReport round-trips through the obs JSON parser
//      (toJson -> parse -> validate -> dump -> reparse -> dump fixpoint).
//
// Built two ways:
//   - standalone driver (always): fuzz_sweep --seed N --runs N
//     [--max-seconds S] [--verbose] — deterministic, used by the
//     `fuzz_smoke` ctest entry;
//   - libFuzzer target (clang + -DPLLBIST_FUZZ=ON): the same fuzzOne()
//     behind LLVMFuzzerTestOneInput.
//
// Any invariant violation prints the offending seed and aborts, so both
// the smoke test and the libFuzzer loop detect it.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "bist/controller.hpp"
#include "bist/resilient_sweep.hpp"
#include "bist/testbench.hpp"
#include "core/report_builder.hpp"
#include "golden/differential.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "sim/fault_injector.hpp"

namespace {

using pllbist::Status;

uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double unitInterval(uint64_t bits) { return static_cast<double>(bits >> 11) * 0x1.0p-53; }

struct FuzzStats {
  uint64_t runs = 0;
  uint64_t swept = 0;     ///< sweeps that actually ran
  uint64_t rejected = 0;  ///< option mutations refused as InvalidArgument
  uint64_t faulted = 0;   ///< runs with the injector attached
};

[[noreturn]] void fail(uint64_t seed, const char* invariant, const std::string& detail) {
  std::fprintf(stderr, "fuzz_sweep: INVARIANT VIOLATION [seed 0x%016llx] %s: %s\n",
               static_cast<unsigned long long>(seed), invariant, detail.c_str());
  std::abort();
}

void requireFinite(uint64_t seed, const char* what, double v) {
  if (!std::isfinite(v)) fail(seed, "finite", std::string(what) + " is not finite");
}

// The Status taxonomy is total: every kind the library can produce has a
// name, and kindName never falls through to a placeholder.
void requireTaxonomy(uint64_t seed, const Status& s, const char* where) {
  const char* name = Status::kindName(s.kind());
  if (name == nullptr || *name == '\0' || std::strcmp(name, "unknown") == 0)
    fail(seed, "status-taxonomy", std::string(where) + ": unnamed status kind");
}

// One fuzz iteration. `data` seeds a splitmix64 stream; the stream picks
// the device, mutates the sweep options (sometimes into invalid shapes on
// purpose) and decides the fault choreography. Returns stats deltas via
// `st`.
void fuzzOne(const uint8_t* data, size_t size, FuzzStats& st) {
  ++st.runs;
  uint64_t seed = pllbist::obs::fnv1a64(
      std::string_view(reinterpret_cast<const char*>(data), size));
  if (seed == 0) seed = 1;
  uint64_t state = seed;

  // Device from the same seeded family as the golden differential suite:
  // fn in [120, 420] Hz, zeta in [0.3, 1.5], both pump kinds.
  const pllbist::golden::SeededConfig device = pllbist::golden::seededRandomConfig(seed);
  const pllbist::pll::PllConfig& config = device.config;

  pllbist::bist::SweepOptions sweep = pllbist::bist::quickSweepOptions(
      config, pllbist::bist::StimulusKind::MultiToneFsk, 3);
  sweep.modulation_frequencies_hz = {0.3 * device.fn_hz, 1.0 * device.fn_hz,
                                     2.0 * device.fn_hz};
  sweep.jitter_seed = static_cast<unsigned>(seed);

  // Structured mutations. Each draw perturbs one knob; a slice of the
  // space is deliberately invalid to exercise the rejection path.
  const uint64_t knobs = splitmix64(state);
  sweep.fm_steps = 4 + static_cast<int>(splitmix64(state) % 37);  // 4..40
  sweep.deviation_hz *= 0.25 + 3.75 * unitInterval(splitmix64(state));
  if ((knobs & 0x01) != 0) sweep.master_clock_hz *= ((knobs & 0x02) != 0) ? 2.0 : 0.5;
  if ((knobs & 0x04) != 0)
    sweep.sequencer.settle_periods = 1 + static_cast<int>(splitmix64(state) % 6);
  if ((knobs & 0x08) != 0)
    sweep.sequencer.average_periods = 1 + static_cast<int>(splitmix64(state) % 8);

  const unsigned poison = static_cast<unsigned>(splitmix64(state) % 16);
  switch (poison) {
    case 0: sweep.deviation_hz = -sweep.deviation_hz; break;          // negative depth
    case 1: sweep.modulation_frequencies_hz.clear(); break;           // empty plan
    case 2:                                                           // descending plan
      std::swap(sweep.modulation_frequencies_hz.front(), sweep.modulation_frequencies_hz.back());
      break;
    case 3: sweep.fm_steps = 0; break;                                // no FSK slots
    case 4: sweep.deviation_hz = 2.0 * config.ref_frequency_hz; break;  // DCO wraps 0 Hz
    default: break;  // leave valid
  }

  // Invariant 2 (rejection path): a bad plan must come back as a named
  // InvalidArgument, never crash and never pass.
  const Status precheck = sweep.check(config);
  requireTaxonomy(seed, precheck, "SweepOptions::check");
  if (!precheck.ok()) {
    if (precheck.kind() != Status::Kind::InvalidArgument)
      fail(seed, "status-taxonomy",
           "option rejection is not InvalidArgument: " + precheck.toString());
    ++st.rejected;
    return;
  }
  if (poison <= 4)
    fail(seed, "status-taxonomy", "poisoned options passed SweepOptions::check");

  pllbist::bist::ResilientSweepOptions resilience;
  resilience.max_attempts = 2;
  pllbist::bist::ResilientSweep engine(config, sweep, resilience);

  // Fault choreography on a slice of the runs: drop or stick the divided
  // output under the sweep and require the taxonomy to absorb it.
  const uint64_t fault_draw = splitmix64(state);
  const bool inject = (fault_draw & 0x03) == 0;  // ~25% of valid runs
  if (inject) {
    ++st.faulted;
    const double drop_p = 0.05 + 0.30 * unitInterval(splitmix64(state));
    const uint64_t inj_seed = splitmix64(state) | 1;
    engine.onTestbench([drop_p, inj_seed, fault_draw](pllbist::bist::SweepTestbench& tb) {
      pllbist::sim::FaultInjector& inj = tb.faultInjector(inj_seed);
      if ((fault_draw & 0x04) != 0)
        inj.dropEdges(tb.mfreq(), drop_p);
      else
        inj.delayEdges(tb.mfreq(), drop_p, 1e-7, 1e-5);
    });
  }

  const pllbist::bist::ResilientResponse result = engine.run();
  ++st.swept;

  // Invariant 2 (result path): every status the stack produced is named.
  requireTaxonomy(seed, result.status, "sweep status");
  for (const pllbist::bist::MeasuredPoint& p : result.response.points) {
    requireTaxonomy(seed, p.status, "point status");
    const char* q = to_string(p.quality);
    if (q == nullptr || *q == '\0')
      fail(seed, "status-taxonomy", "unnamed point quality");
    // Invariant 1: no NaN/Inf escapes a measurement, timed out or not.
    requireFinite(seed, "modulation_hz", p.modulation_hz);
    requireFinite(seed, "deviation_hz", p.deviation_hz);
    requireFinite(seed, "phase_deg", p.phase_deg);
    requireFinite(seed, "unity_gain_deviation_hz", p.unity_gain_deviation_hz);
    requireFinite(seed, "wall_time_s", p.wall_time_s);
    if (p.attempts < 1) fail(seed, "quality-rollup", "point consumed < 1 attempt");
  }
  requireFinite(seed, "nominal_vco_hz", result.response.nominal_vco_hz);
  requireFinite(seed, "static_reference_deviation_hz",
                result.response.static_reference_deviation_hz);

  // Invariant 3: the quality roll-up counters agree with themselves and
  // with the measured points.
  const pllbist::bist::SweepQualityReport& rep = result.report;
  const int classified = rep.ok + rep.retried + rep.degraded + rep.dropped;
  if (classified != rep.points_total)
    fail(seed, "quality-rollup",
         "ok+retried+degraded+dropped = " + std::to_string(classified) + " != points_total = " +
             std::to_string(rep.points_total));
  if (rep.points_total != static_cast<int>(result.response.points.size()))
    fail(seed, "quality-rollup", "points_total disagrees with response.points.size()");
  if (rep.attempts_total < rep.points_total)
    fail(seed, "quality-rollup", "attempts_total < points_total");
  if (rep.usable() != rep.points_total - rep.dropped)
    fail(seed, "quality-rollup", "usable() != points_total - dropped");
  requireFinite(seed, "sim_time_s", rep.sim_time_s);
  requireFinite(seed, "wall_time_s", rep.wall_time_s);

  // Invariant 4: the consolidated report round-trips through the PR-3
  // parser and re-serialises to a fixpoint.
  const pllbist::obs::RunReport run =
      pllbist::core::buildRunReport("fuzz_sweep", "fuzz", config, sweep, -1, result);
  const std::string text = run.toJson();
  pllbist::obs::JsonValue root;
  const Status parsed = pllbist::obs::parseJson(text, root);
  if (!parsed.ok()) fail(seed, "report-roundtrip", "toJson unparseable: " + parsed.toString());
  const Status valid = pllbist::obs::validateRunReportJson(root);
  if (!valid.ok()) fail(seed, "report-roundtrip", "schema violation: " + valid.toString());
  const std::string dumped = root.dump();
  pllbist::obs::JsonValue again;
  if (!pllbist::obs::parseJson(dumped, again).ok())
    fail(seed, "report-roundtrip", "canonical dump unparseable");
  if (again.dump() != dumped) fail(seed, "report-roundtrip", "dump -> parse -> dump not a fixpoint");
  pllbist::obs::stripTimingFields(again);
  if (!pllbist::obs::validateRunReportJson(again).ok())
    fail(seed, "report-roundtrip", "stripped report no longer validates");
}

}  // namespace

#if defined(PLLBIST_FUZZ_LIBFUZZER)

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static FuzzStats st;
  fuzzOne(data, size, st);
  return 0;
}

#else  // standalone seeded driver

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--runs N] [--max-seconds S] [--verbose]\n"
               "Deterministic seeded fuzz of the sweep stack; aborts on the first\n"
               "invariant violation. Stops at --runs iterations or the --max-seconds\n"
               "budget, whichever comes first.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  uint64_t runs = 50;
  double max_seconds = 60.0;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_sweep: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") seed = std::strtoull(next("--seed"), nullptr, 0);
    else if (arg == "--runs") runs = std::strtoull(next("--runs"), nullptr, 0);
    else if (arg == "--max-seconds") max_seconds = std::strtod(next("--max-seconds"), nullptr);
    else if (arg == "--verbose") verbose = true;
    else return usage(argv[0]);
  }

  const auto t0 = std::chrono::steady_clock::now();
  FuzzStats st;
  for (uint64_t i = 0; i < runs; ++i) {
    uint8_t buf[16];
    const uint64_t a = seed, b = i;
    std::memcpy(buf, &a, 8);
    std::memcpy(buf + 8, &b, 8);
    fuzzOne(buf, sizeof buf, st);
    const double elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    if (verbose)
      std::printf("run %llu/%llu  swept=%llu rejected=%llu faulted=%llu  %.1fs\n",
                  static_cast<unsigned long long>(i + 1), static_cast<unsigned long long>(runs),
                  static_cast<unsigned long long>(st.swept),
                  static_cast<unsigned long long>(st.rejected),
                  static_cast<unsigned long long>(st.faulted), elapsed);
    if (elapsed > max_seconds) break;
  }
  std::printf("fuzz_sweep: %llu runs (%llu swept, %llu rejected, %llu faulted), 0 violations\n",
              static_cast<unsigned long long>(st.runs),
              static_cast<unsigned long long>(st.swept),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.faulted));
  if (st.swept == 0) {
    std::fprintf(stderr, "fuzz_sweep: no iteration exercised a sweep — widen the budget\n");
    return 1;
  }
  return 0;
}

#endif  // PLLBIST_FUZZ_LIBFUZZER
