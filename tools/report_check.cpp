// Report schema checker: validates that a JSON document conforms to one of
// the report schemas (see obs/report.hpp) — dispatched on the document's
// own "schema" field:
//
//   pllbist.run_report/1     the consolidated sweep report (sweep_cli --report)
//   pllbist.golden_report/1  the golden-model differential report
//   pllbist.checkpoint/1     the campaign checkpoint journal (JSONL; the
//                            schema lives on the header line, so dispatch
//                            parses the first line before the whole file)
//
// Pure C++, no external tooling — CI and the obs test suite use it to
// round-trip reports the tools emit.
//
//   report_check file.json [more.json ...]   validate files, exit 0 iff all pass
//   report_check --selftest                  build reports of all schemas
//                                            in-process, serialise, re-parse,
//                                            validate, and check that
//                                            stripTimingFields removes exactly
//                                            the documented timing paths
//
// Journal validation accepts a torn final line (the signature of a crash
// mid-append — resume repairs it by truncation) with a note, but rejects
// corrupt interior lines and malformed headers, matching the loader's
// fail-closed contract.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/journal.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace {

using namespace pllbist;

// Route a parsed document to the validator its "schema" field names.
Status validateBySchema(const obs::JsonValue& doc, const char** schema_out) {
  const obs::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->isString())
    return Status::make(Status::Kind::InvalidArgument, "document has no 'schema' string");
  if (schema->string == obs::kRunReportSchema) {
    *schema_out = obs::kRunReportSchema;
    return obs::validateRunReportJson(doc);
  }
  if (schema->string == obs::kGoldenReportSchema) {
    *schema_out = obs::kGoldenReportSchema;
    return obs::validateGoldenReportJson(doc);
  }
  return Status::makef(Status::Kind::InvalidArgument,
                       "unsupported schema '%s' (expected '%s' or '%s')",
                       schema->string.c_str(), obs::kRunReportSchema, obs::kGoldenReportSchema);
}

// Checkpoint journals are JSONL, so the file as a whole is not one JSON
// document — detect them by parsing the first line and reading its schema.
bool looksLikeJournal(const std::string& text) {
  const std::size_t eol = text.find('\n');
  const std::string first = text.substr(0, eol);
  obs::JsonValue doc;
  if (!obs::parseJson(first, doc).ok()) return false;
  const obs::JsonValue* schema = doc.find("schema");
  return schema != nullptr && schema->isString() && schema->string == core::kCheckpointSchema;
}

int checkJournalFile(const char* path, const std::string& text) {
  core::JournalLoadResult loaded;
  if (Status s = core::parseJournal(text, loaded); !s.ok()) {
    std::fprintf(stderr, "report_check: %s: %s\n", path, s.toString().c_str());
    return 1;
  }
  std::printf("report_check: %s: ok (%s, %zu records of %zu points%s%s)\n", path,
              core::kCheckpointSchema, loaded.records.size(), loaded.header.points_total,
              loaded.torn_tail ? ", torn tail discarded" : "",
              loaded.duplicates_ignored > 0 ? ", duplicates ignored" : "");
  return 0;
}

int checkFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "report_check: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (looksLikeJournal(buf.str())) return checkJournalFile(path, buf.str());
  obs::JsonValue doc;
  if (Status s = obs::parseJson(buf.str(), doc); !s.ok()) {
    std::fprintf(stderr, "report_check: %s: %s\n", path, s.toString().c_str());
    return 1;
  }
  const char* schema = "?";
  if (Status s = validateBySchema(doc, &schema); !s.ok()) {
    std::fprintf(stderr, "report_check: %s: %s\n", path, s.toString().c_str());
    return 1;
  }
  std::printf("report_check: %s: ok (%s)\n", path, schema);
  return 0;
}

int selftest() {
  // Assemble a small but fully populated report by hand: two points, a
  // fault section, one histogram — every schema branch exercised.
  obs::RunReport rep;
  rep.tool = "report_check";
  rep.device = "selftest";
  rep.stimulus = "multi-tone-fsk";
  rep.config_digest = obs::fnv1a64("selftest-config");
  rep.jobs = 2;
  rep.quality.points_total = 2;
  rep.quality.ok = 1;
  rep.quality.dropped = 1;
  rep.quality.attempts_total = 3;
  rep.quality.sim_time_s = 1.5;
  rep.quality.wall_time_s = 0.25;
  obs::RunReport::Point p1;
  p1.fm_hz = 8.0;
  p1.deviation_hz = 450.0;
  p1.phase_deg = -42.0;
  p1.quality = "ok";
  p1.attempts = 1;
  p1.status = "ok";
  p1.wall_time_s = 0.1;
  obs::RunReport::Point p2;
  p2.fm_hz = 16.0;
  p2.quality = "dropped";
  p2.attempts = 2;
  p2.status = "timeout";
  p2.status_context = "watchdog fired";
  p2.wall_time_s = 0.15;
  rep.points = {p1, p2};
  rep.faults = obs::RunReport::FaultStats{100, 3, 2, 1};
  rep.kernel = {5000, 4800, 3, 2, 195};
  obs::CounterValue c;
  c.name = "bist.resilient.attempts";
  c.value = 3;
  rep.metrics.counters.push_back(c);
  obs::HistogramValue h;
  h.name = "bist.sweep.point_wall_s";
  h.bounds = {0.1, 1.0};
  h.buckets = {1, 1, 0};
  h.count = 2;
  h.sum = 0.25;
  h.min = 0.1;
  h.max = 0.15;
  rep.metrics.histograms.push_back(h);

  const std::string text = rep.toJson();
  obs::JsonValue doc;
  if (Status s = obs::parseJson(text, doc); !s.ok()) {
    std::fprintf(stderr, "selftest: serialised report does not parse: %s\n",
                 s.toString().c_str());
    return 1;
  }
  if (Status s = obs::validateRunReportJson(doc); !s.ok()) {
    std::fprintf(stderr, "selftest: serialised report fails validation: %s\n",
                 s.toString().c_str());
    return 1;
  }

  // Timing strip: the stripped document must still validate (timing fields
  // are optional-but-typed) and must not mention wall_time_s anywhere.
  obs::stripTimingFields(doc);
  if (Status s = obs::validateRunReportJson(doc); !s.ok()) {
    std::fprintf(stderr, "selftest: stripped report fails validation: %s\n",
                 s.toString().c_str());
    return 1;
  }
  if (doc.dump().find("wall_time_s") != std::string::npos) {
    std::fprintf(stderr, "selftest: stripTimingFields left a wall_time_s field behind\n");
    return 1;
  }

  // Negative checks: corrupting the document must be caught.
  obs::JsonValue bad;
  (void)obs::parseJson(text, bad);
  if (obs::JsonValue* schema = bad.find("schema")) schema->string = "bogus/9";
  if (obs::validateRunReportJson(bad).ok()) {
    std::fprintf(stderr, "selftest: wrong schema string was accepted\n");
    return 1;
  }
  (void)obs::parseJson(text, bad);
  if (obs::JsonValue* quality = bad.find("quality"))
    if (obs::JsonValue* ok = quality->find("ok")) ok->number = 99.0;
  if (obs::validateRunReportJson(bad).ok()) {
    std::fprintf(stderr, "selftest: inconsistent quality counters were accepted\n");
    return 1;
  }

  std::printf("report_check: selftest ok\n");
  return 0;
}

// A minimal but fully populated golden_report document: two bands, one
// compared in-band point, one excluded tail point, a consistent summary.
// Handcrafted (rather than produced by golden::runDifferential) so the
// checker stays a pure obs-layer tool with no simulator dependency.
const char kGoldenExample[] = R"({
  "schema": "pllbist.golden_report/1",
  "tool": "golden_differential",
  "config": {
    "device": "selftest", "stimulus": "multi-tone-fsk",
    "digest": "0x00000000deadbeef", "seed": "0x0000000000000007",
    "jobs": 1, "fn_hz": 200.0, "zeta": 0.43, "tau2_s": 0.0016,
    "loop_gain_per_s": 540.0, "transport_delay_ref_periods": 1.0
  },
  "tolerance_bands": [
    { "label": "in-band", "f_over_fn_max": 0.4, "magnitude_db": 1.0, "phase_deg": 5.0 },
    { "label": "peak", "f_over_fn_max": 1.75, "magnitude_db": 2.5, "phase_deg": 12.0 }
  ],
  "sweep_status": "ok",
  "quality": {
    "points_total": 2, "ok": 2, "retried": 0, "degraded": 0, "dropped": 0,
    "attempts_total": 2, "relocks": 0, "relock_failures": 0,
    "sim_time_s": 1.0, "wall_time_s": 0.5
  },
  "points": [
    { "fm_hz": 60.0, "f_over_fn": 0.3, "measured_db": -0.4, "golden_db": -0.5,
      "delta_db": 0.1, "measured_phase_deg": -30.0, "golden_phase_deg": -27.0,
      "delay_correction_deg": 2.2, "delta_phase_deg": -0.8,
      "magnitude_tol_db": 1.0, "phase_tol_deg": 5.0,
      "band": "in-band", "quality": "ok", "compared": true, "pass": true,
      "wall_time_s": 0.2 },
    { "fm_hz": 600.0, "f_over_fn": 3.0, "measured_db": -18.0, "golden_db": -19.0,
      "delta_db": 1.0, "measured_phase_deg": -160.0, "golden_phase_deg": -150.0,
      "delay_correction_deg": 21.6, "delta_phase_deg": 11.6,
      "magnitude_tol_db": 0.0, "phase_tol_deg": 0.0,
      "band": "excluded", "quality": "ok", "compared": false, "pass": false,
      "wall_time_s": 0.3 }
  ],
  "summary": {
    "compared": 1, "excluded": 1,
    "max_abs_delta_db": 0.1, "max_abs_delta_phase_deg": 0.8, "pass": true
  }
})";

int goldenSelftest() {
  obs::JsonValue doc;
  if (Status s = obs::parseJson(kGoldenExample, doc); !s.ok()) {
    std::fprintf(stderr, "golden selftest: example does not parse: %s\n", s.toString().c_str());
    return 1;
  }
  const char* schema = "?";
  if (Status s = validateBySchema(doc, &schema); !s.ok()) {
    std::fprintf(stderr, "golden selftest: example fails validation: %s\n", s.toString().c_str());
    return 1;
  }
  if (std::strcmp(schema, obs::kGoldenReportSchema) != 0) {
    std::fprintf(stderr, "golden selftest: dispatched to the wrong validator (%s)\n", schema);
    return 1;
  }

  // Timing strip applies to golden reports with the same field names.
  obs::stripTimingFields(doc);
  if (Status s = obs::validateGoldenReportJson(doc); !s.ok()) {
    std::fprintf(stderr, "golden selftest: stripped report fails validation: %s\n",
                 s.toString().c_str());
    return 1;
  }
  if (doc.dump().find("wall_time_s") != std::string::npos) {
    std::fprintf(stderr, "golden selftest: stripTimingFields left a wall_time_s behind\n");
    return 1;
  }

  // Negative checks: the cross-checked summary and the band ordering are
  // actually enforced.
  obs::JsonValue bad;
  (void)obs::parseJson(kGoldenExample, bad);
  if (obs::JsonValue* summary = bad.find("summary"))
    if (obs::JsonValue* compared = summary->find("compared")) compared->number = 2.0;
  if (obs::validateGoldenReportJson(bad).ok()) {
    std::fprintf(stderr, "golden selftest: inconsistent summary.compared was accepted\n");
    return 1;
  }
  (void)obs::parseJson(kGoldenExample, bad);
  if (obs::JsonValue* bands = bad.find("tolerance_bands"))
    if (!bands->array.empty())
      if (obs::JsonValue* edge = bands->array.front().find("f_over_fn_max"))
        edge->number = 9.0;  // now descending
  if (obs::validateGoldenReportJson(bad).ok()) {
    std::fprintf(stderr, "golden selftest: descending band edges were accepted\n");
    return 1;
  }
  (void)obs::parseJson(kGoldenExample, bad);
  if (obs::JsonValue* schema_field = bad.find("schema")) schema_field->string = "bogus/9";
  const char* ignored = "?";
  if (validateBySchema(bad, &ignored).ok()) {
    std::fprintf(stderr, "golden selftest: unknown schema string was accepted\n");
    return 1;
  }

  std::printf("report_check: golden selftest ok\n");
  return 0;
}

int journalSelftest() {
  // Round-trip: serialise a small journal through the writer's canonical
  // line forms, re-parse, verify the header check passes.
  core::CheckpointHeader hdr;
  hdr.tool = "report_check";
  hdr.device = "selftest";
  hdr.stimulus = "multi-tone-fsk";
  hdr.config_digest = obs::fnv1a64("selftest-config");
  hdr.points_total = 3;
  std::string text = core::JournalWriter::headerLine(hdr) + "\n";
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < 3; ++i) {
    core::CheckpointRecord rec;
    rec.index = i;
    rec.point.modulation_hz = 10.0 * static_cast<double>(i + 1);
    rec.point.deviation_hz = 400.0 - 10.0 * static_cast<double>(i);
    rec.point.phase_deg = -15.0 * static_cast<double>(i + 1);
    rec.nominal_vco_hz = 1e5;
    rec.static_reference_deviation_hz = 1000.0;
    rec.sim_time_s = 0.3;
    rec.bench.events_processed = 1000 + 7 * static_cast<long long>(i);
    rec.bench.events_delivered = 990;
    lines.push_back(core::JournalWriter::recordLine(rec));
  }
  for (const std::string& l : lines) text += l + "\n";

  core::JournalLoadResult loaded;
  if (Status s = core::parseJournal(text, loaded); !s.ok()) {
    std::fprintf(stderr, "journal selftest: round-trip does not parse: %s\n",
                 s.toString().c_str());
    return 1;
  }
  if (loaded.records.size() != 3 || loaded.torn_tail || loaded.clean_bytes != text.size()) {
    std::fprintf(stderr, "journal selftest: round-trip lost records (%zu of 3, clean %zu/%zu)\n",
                 loaded.records.size(), loaded.clean_bytes, text.size());
    return 1;
  }
  if (Status s = core::checkJournalHeader(loaded.header, hdr.config_digest, hdr.points_total);
      !s.ok()) {
    std::fprintf(stderr, "journal selftest: matching header was rejected: %s\n",
                 s.toString().c_str());
    return 1;
  }

  // Torn tail: a file cut mid-record must load with the tail discarded and
  // clean_bytes pointing at the last complete line — never an error.
  const std::string torn = text.substr(0, text.size() - lines.back().size() / 2 - 1);
  core::JournalLoadResult torn_loaded;
  if (Status s = core::parseJournal(torn, torn_loaded); !s.ok()) {
    std::fprintf(stderr, "journal selftest: torn tail was rejected: %s\n", s.toString().c_str());
    return 1;
  }
  if (!torn_loaded.torn_tail || torn_loaded.records.size() != 2) {
    std::fprintf(stderr, "journal selftest: torn tail not detected (%zu records, torn=%d)\n",
                 torn_loaded.records.size(), torn_loaded.torn_tail ? 1 : 0);
    return 1;
  }

  // Digest mismatch: a journal from a different campaign must be rejected.
  if (core::checkJournalHeader(loaded.header, hdr.config_digest ^ 1, hdr.points_total).ok()) {
    std::fprintf(stderr, "journal selftest: wrong config digest was accepted\n");
    return 1;
  }
  if (core::checkJournalHeader(loaded.header, hdr.config_digest, hdr.points_total + 1).ok()) {
    std::fprintf(stderr, "journal selftest: wrong campaign size was accepted\n");
    return 1;
  }

  // Corrupt interior line: fail closed, not recoverable.
  std::string corrupt = text;
  const std::size_t mid = corrupt.find("\"index\":1");
  corrupt[mid + 1] = '!';
  core::JournalLoadResult corrupt_loaded;
  if (core::parseJournal(corrupt, corrupt_loaded).ok()) {
    std::fprintf(stderr, "journal selftest: corrupt interior line was accepted\n");
    return 1;
  }

  // Duplicate index: keep-first, counted.
  const std::string dup = text + lines[0] + "\n";
  core::JournalLoadResult dup_loaded;
  if (Status s = core::parseJournal(dup, dup_loaded); !s.ok()) {
    std::fprintf(stderr, "journal selftest: duplicate record was rejected: %s\n",
                 s.toString().c_str());
    return 1;
  }
  if (dup_loaded.records.size() != 3 || dup_loaded.duplicates_ignored != 1) {
    std::fprintf(stderr, "journal selftest: duplicate handling wrong (%zu records, %zu ignored)\n",
                 dup_loaded.records.size(), dup_loaded.duplicates_ignored);
    return 1;
  }

  std::printf("report_check: journal selftest ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s file.json [more.json ...] | --selftest\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0)
      rc |= selftest() | goldenSelftest() | journalSelftest();
    else rc |= checkFile(argv[i]);
  }
  return rc;
}
