// RunReport schema checker: validates that a JSON document conforms to the
// pllbist.run_report/1 schema (see obs/report.hpp). Pure C++, no external
// tooling — CI and the obs test suite use it to round-trip reports that
// sweep_cli --report emits.
//
//   report_check file.json [more.json ...]   validate files, exit 0 iff all pass
//   report_check --selftest                  build a report in-process, serialise,
//                                            re-parse, validate, and check that
//                                            stripTimingFields removes exactly
//                                            the documented timing paths

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace {

using namespace pllbist;

int checkFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "report_check: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const Status s = obs::validateRunReportText(buf.str());
  if (!s.ok()) {
    std::fprintf(stderr, "report_check: %s: %s\n", path, s.toString().c_str());
    return 1;
  }
  std::printf("report_check: %s: ok\n", path);
  return 0;
}

int selftest() {
  // Assemble a small but fully populated report by hand: two points, a
  // fault section, one histogram — every schema branch exercised.
  obs::RunReport rep;
  rep.tool = "report_check";
  rep.device = "selftest";
  rep.stimulus = "multi-tone-fsk";
  rep.config_digest = obs::fnv1a64("selftest-config");
  rep.jobs = 2;
  rep.quality.points_total = 2;
  rep.quality.ok = 1;
  rep.quality.dropped = 1;
  rep.quality.attempts_total = 3;
  rep.quality.sim_time_s = 1.5;
  rep.quality.wall_time_s = 0.25;
  obs::RunReport::Point p1;
  p1.fm_hz = 8.0;
  p1.deviation_hz = 450.0;
  p1.phase_deg = -42.0;
  p1.quality = "ok";
  p1.attempts = 1;
  p1.status = "ok";
  p1.wall_time_s = 0.1;
  obs::RunReport::Point p2;
  p2.fm_hz = 16.0;
  p2.quality = "dropped";
  p2.attempts = 2;
  p2.status = "timeout";
  p2.status_context = "watchdog fired";
  p2.wall_time_s = 0.15;
  rep.points = {p1, p2};
  rep.faults = obs::RunReport::FaultStats{100, 3, 2, 1};
  rep.kernel = {5000, 4800, 3, 2, 195};
  obs::CounterValue c;
  c.name = "bist.resilient.attempts";
  c.value = 3;
  rep.metrics.counters.push_back(c);
  obs::HistogramValue h;
  h.name = "bist.sweep.point_wall_s";
  h.bounds = {0.1, 1.0};
  h.buckets = {1, 1, 0};
  h.count = 2;
  h.sum = 0.25;
  h.min = 0.1;
  h.max = 0.15;
  rep.metrics.histograms.push_back(h);

  const std::string text = rep.toJson();
  obs::JsonValue doc;
  if (Status s = obs::parseJson(text, doc); !s.ok()) {
    std::fprintf(stderr, "selftest: serialised report does not parse: %s\n",
                 s.toString().c_str());
    return 1;
  }
  if (Status s = obs::validateRunReportJson(doc); !s.ok()) {
    std::fprintf(stderr, "selftest: serialised report fails validation: %s\n",
                 s.toString().c_str());
    return 1;
  }

  // Timing strip: the stripped document must still validate (timing fields
  // are optional-but-typed) and must not mention wall_time_s anywhere.
  obs::stripTimingFields(doc);
  if (Status s = obs::validateRunReportJson(doc); !s.ok()) {
    std::fprintf(stderr, "selftest: stripped report fails validation: %s\n",
                 s.toString().c_str());
    return 1;
  }
  if (doc.dump().find("wall_time_s") != std::string::npos) {
    std::fprintf(stderr, "selftest: stripTimingFields left a wall_time_s field behind\n");
    return 1;
  }

  // Negative checks: corrupting the document must be caught.
  obs::JsonValue bad;
  (void)obs::parseJson(text, bad);
  if (obs::JsonValue* schema = bad.find("schema")) schema->string = "bogus/9";
  if (obs::validateRunReportJson(bad).ok()) {
    std::fprintf(stderr, "selftest: wrong schema string was accepted\n");
    return 1;
  }
  (void)obs::parseJson(text, bad);
  if (obs::JsonValue* quality = bad.find("quality"))
    if (obs::JsonValue* ok = quality->find("ok")) ok->number = 99.0;
  if (obs::validateRunReportJson(bad).ok()) {
    std::fprintf(stderr, "selftest: inconsistent quality counters were accepted\n");
    return 1;
  }

  std::printf("report_check: selftest ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s file.json [more.json ...] | --selftest\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0) rc |= selftest();
    else rc |= checkFile(argv[i]);
  }
  return rc;
}
